// Package dist implements one-phase, fault-tolerant distributed deadlock
// detection (§5.2 of the paper). Each participating process runs a Site: a
// local verifier in observe mode plus a background loop that, every period,
//
//  1. publishes the site's blocked statuses to the shared store (package
//     store, the Redis stand-in), and
//  2. fetches every other site's published snapshot, merges it with the
//     live local state, and runs cycle analysis on the global view.
//
// The algorithm is one-phase because a blocked status is a pure function of
// the blocked task's own registration vector (§2.2): sites never coordinate
// or vote — each independently reaches the same verdict from the merged
// view. It is fault-tolerant because snapshots are self-contained
// overwrites: a site that crashes and restarts simply republishes, the
// reconnecting store.Client rides out store restarts, and a corrupt
// snapshot is dropped (counted in SiteStats) without wedging anyone else's
// check. A *stale* snapshot — a site that died without withdrawing its key
// — is deliberately kept: its tasks were genuinely blocked when it was
// published and, with the site gone, can never advance, so any cycle it
// participates in is a real, permanent deadlock (and an internally acyclic
// stale snapshot can never fabricate one, because per-site snapshots are
// consistent).
//
// Task and phaser IDs are made globally unique by offsetting each site's
// verifier with core.WithIDBase(siteID << SiteIDShift), so merged snapshots
// never alias and a report names the owning site of every task.
package dist

import (
	"errors"
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"armus/internal/clock"
	"armus/internal/core"
	"armus/internal/deps"
	"armus/internal/store"
	"armus/internal/trace"
)

// DefaultPeriod is the publish/check period of the paper's distributed
// evaluation (§6.2: sites verify every 200 ms).
const DefaultPeriod = 200 * time.Millisecond

// SiteIDShift is the bit position of the site ID inside task and phaser
// IDs: site s mints IDs in [s<<SiteIDShift, (s+1)<<SiteIDShift), giving
// every site 2^32 local IDs with no cross-site collisions.
const SiteIDShift = 32

// keyPrefix namespaces the per-site snapshot keys in the shared store; each
// site overwrites only its own key and scans the prefix for everyone's.
const keyPrefix = "armus:site:"

// ErrSiteClosed is returned by PublishOnce and CheckOnce after Close: a
// closed site must not re-publish the snapshot Close withdrew.
var ErrSiteClosed = errors.New("dist: site is closed")

// SiteOf recovers the publishing site of a distributed task or phaser ID
// (0 for IDs minted by a non-distributed verifier).
func SiteOf(id int64) int { return int(id >> SiteIDShift) }

// Option configures NewSite.
type Option func(*Site)

// WithModel selects the graph model for the site's global analysis
// (default deps.ModelAuto, the adaptive §5.1 policy).
func WithModel(m deps.Model) Option { return func(s *Site) { s.model = m } }

// WithPeriod sets the publish/check period (default DefaultPeriod).
func WithPeriod(d time.Duration) Option { return func(s *Site) { s.period = d } }

// WithClock injects the clock driving the publish/check loop (default the
// real time.Ticker clock). Tests pass a *clock.Fake and step rounds
// deterministically instead of sleeping through periods.
func WithClock(c clock.Clock) Option { return func(s *Site) { s.clock = c } }

// WithVerifierTrace taps the site's local verifier with a trace recorder
// (core.WithTraceRecorder): every local transition of this site — block,
// unblock, register, arrive, drop — is recorded for later replay. The
// site's global-check verdicts are not trace events (they are derived
// state, recomputed by the replayer's observe+dist pipeline); the trace is
// the site's local contribution to the cluster.
func WithVerifierTrace(r *trace.Recorder) Option {
	return func(s *Site) { s.rec = r }
}

// WithVerifierMode overrides the mode of the site's local verifier. The
// default is core.ModeObserve: blocked statuses are recorded for publishing
// but no local checker runs (the global loop is the checker). ModeOff gives
// the unchecked baseline of Figure 7. Avoidance is unavailable distributed,
// exactly as in the paper (§5.2).
func WithVerifierMode(m core.Mode) Option { return func(s *Site) { s.mode = m } }

// WithOnDeadlock installs the handler for deadlocks found by the site's
// global check. The default logs the report. The handler runs on the
// site's loop goroutine; a given cycle is reported once until it changes.
func WithOnDeadlock(f func(*core.DeadlockError)) Option {
	return func(s *Site) { s.onDeadlock = f }
}

// Site is one participant of a distributed program: it owns the process's
// local verifier and the publish/check loop of the one-phase algorithm.
type Site struct {
	id     int
	model  deps.Model
	period time.Duration
	mode   core.Mode
	clock  clock.Clock

	v          *core.Verifier
	client     *store.Client
	onDeadlock func(*core.DeadlockError)
	rec        *trace.Recorder

	seq   atomic.Uint64
	stats siteStats

	// pubMu serialises publishing against Close so a PublishOnce racing
	// Close can never recreate the key Close just withdrew (the store
	// client transparently redials, so closing it is not enough). It also
	// owns snapBuf, the reusable snapshot buffer of the publish loop.
	pubMu   sync.Mutex
	snapBuf []deps.Blocked

	// chkMu owns the check round's reusable merged-view buffer and graph
	// builder, so the periodic global analysis does not re-allocate the
	// local snapshot, index and graph every round.
	chkMu   sync.Mutex
	chkBuf  []deps.Blocked
	builder *deps.Builder

	mu      sync.Mutex
	started bool
	closed  bool
	stop    chan struct{}
	done    chan struct{}
}

// NewSite creates site id connected to the store at addr. IDs minted by
// the site's verifier are offset by id << SiteIDShift so they are globally
// unique; ids must therefore be distinct across the cluster (and small
// enough to leave the local ID space intact, i.e. 0 <= id < 2^31). The
// loop is not running until Start.
func NewSite(id int, addr string, opts ...Option) *Site {
	s := &Site{
		id:      id,
		model:   deps.ModelAuto,
		period:  DefaultPeriod,
		mode:    core.ModeObserve,
		clock:   clock.Real{},
		client:  store.Dial(addr),
		builder: deps.NewBuilder(),
	}
	for _, o := range opts {
		o(s)
	}
	if s.onDeadlock == nil {
		s.onDeadlock = func(e *core.DeadlockError) { log.Printf("armus: site %d: %v", id, e) }
	}
	copts := []core.Option{
		core.WithMode(s.mode),
		core.WithModel(s.model),
		core.WithIDBase(int64(id) << SiteIDShift),
	}
	if s.rec != nil {
		if s.rec.Label() == "" {
			s.rec.SetLabel(fmt.Sprintf("site %d", id))
		}
		copts = append(copts, core.WithTraceRecorder(s.rec))
	}
	s.v = core.New(copts...)
	return s
}

// ID returns the site's cluster-unique identifier.
func (s *Site) ID() int { return s.id }

// Verifier returns the site's local verifier; the application creates its
// tasks and phasers through it.
func (s *Site) Verifier() *core.Verifier { return s.v }

// Start launches the publish/check loop. Idempotent; a closed site does
// not restart.
func (s *Site) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.closed {
		return
	}
	s.started = true
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go s.loop()
}

// Close stops the loop, withdraws the site's snapshot from the store
// (best-effort), and closes the client and the local verifier. Idempotent.
func (s *Site) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	started := s.started
	s.mu.Unlock()
	if started {
		close(s.stop)
		<-s.done
	}
	s.pubMu.Lock()
	defer s.pubMu.Unlock()
	if _, err := s.client.Del(s.key()); err != nil {
		// The snapshot could not be withdrawn (store down?). Survivors will
		// keep merging it as a stale snapshot — harmless while acyclic, but
		// the operator should know it was left behind.
		s.stats.withdrawFailures.Add(1)
		log.Printf("armus: site %d: could not withdraw snapshot on close: %v", s.id, err)
	}
	s.client.Close()
	s.v.Close()
}

func (s *Site) key() string { return fmt.Sprintf("%s%d", keyPrefix, s.id) }

func (s *Site) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// loop is the site's verification round: publish, then check, every
// period. Errors are counted, never fatal — the next round retries, which
// together with the reconnecting client is the whole §5.2 fault-tolerance
// story.
func (s *Site) loop() {
	defer close(s.done)
	ticker := s.clock.NewTicker(s.period)
	defer ticker.Stop()
	var lastReported string
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C():
		}
		_ = s.PublishOnce() // counted; check runs regardless (local view)
		rep, err := s.CheckOnce()
		if err != nil {
			continue
		}
		if rep == nil {
			lastReported = ""
			continue
		}
		if fp := fingerprint(rep.Cycle); fp != lastReported {
			lastReported = fp
			s.stats.deadlocks.Add(1)
			s.onDeadlock(rep)
		}
	}
}

// fingerprint identifies a cycle by its task set, so the loop reports a
// persisting deadlock once rather than once per period.
func fingerprint(c *deps.Cycle) string {
	ids := make([]int64, len(c.Tasks))
	for i, t := range c.Tasks {
		ids[i] = int64(t)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var b strings.Builder
	for _, id := range ids {
		fmt.Fprintf(&b, "%d,", id)
	}
	return b.String()
}

// PublishOnce serialises the local blocked statuses and overwrites the
// site's key in the store. One round of the publish half of the loop;
// exported for tests and for applications that drive their own schedule.
// Snapshots are deep copies (deps.State copies statuses on both write and
// read), so a publish can never observe torn data from a concurrently
// re-blocking task; the buffer is reused across rounds.
func (s *Site) PublishOnce() error {
	s.pubMu.Lock()
	defer s.pubMu.Unlock()
	if s.isClosed() {
		return ErrSiteClosed
	}
	s.snapBuf = s.v.State().SnapshotInto(s.snapBuf)
	payload := encodeSnapshot(s.id, s.seq.Add(1), s.snapBuf)
	if err := s.client.Set(s.key(), payload); err != nil {
		s.stats.publishErrors.Add(1)
		return err
	}
	s.stats.publishes.Add(1)
	return nil
}

// CheckOnce fetches every site's published snapshot, merges it with the
// live local state, and runs cycle analysis on the global view. It returns
// the deadlock report, or (nil, nil) when the global state is deadlock
// free. Undecodable snapshots are dropped (counted in SiteStats) rather
// than failing the check.
func (s *Site) CheckOnce() (*core.DeadlockError, error) {
	if s.isClosed() {
		return nil, ErrSiteClosed
	}
	s.chkMu.Lock()
	defer s.chkMu.Unlock()
	merged, err := s.fetchMergedLocked()
	if err != nil {
		s.stats.checkErrors.Add(1)
		return nil, err
	}
	a := s.builder.Build(s.model, merged)
	s.stats.checks.Add(1)
	cyc := a.FindDeadlock(merged)
	if cyc == nil {
		return nil, nil
	}
	return s.newReport(cyc), nil
}

// fetchMergedLocked assembles the global view: the live local state plus
// every other site's published snapshot. The local state is used directly
// (it is fresher than the published copy of it); globally unique task IDs
// make the merge a plain concatenation. Caller holds chkMu; the returned
// slice is the reusable chkBuf (remote entries decoded last round are
// overwritten in place, which is safe — nothing references them once the
// round's analysis is done).
func (s *Site) fetchMergedLocked() ([]deps.Blocked, error) {
	merged := s.v.State().SnapshotInto(s.chkBuf)
	defer func() { s.chkBuf = merged }()
	keys, err := s.client.Keys(keyPrefix)
	if err != nil {
		return nil, err
	}
	own := s.key()
	for _, k := range keys {
		if k == own {
			continue
		}
		payload, err := s.client.Get(k)
		if errors.Is(err, store.ErrNil) {
			continue // withdrawn between KEYS and GET
		}
		if err != nil {
			return nil, err
		}
		_, _, snap, err := decodeSnapshot(payload)
		if err != nil {
			s.stats.snapshotsDropped.Add(1)
			continue
		}
		merged = append(merged, snap...)
	}
	return merged, nil
}

// newReport wraps a cycle as a *core.DeadlockError, naming local tasks
// from the verifier and remote tasks by their owning site.
func (s *Site) newReport(cyc *deps.Cycle) *core.DeadlockError {
	names := make(map[deps.TaskID]string, len(cyc.Tasks))
	for _, t := range cyc.Tasks {
		if n := s.v.TaskName(t); n != "" {
			names[t] = n
		} else {
			names[t] = fmt.Sprintf("site%d.task%d", SiteOf(int64(t)), int64(t)&(1<<SiteIDShift-1))
		}
	}
	return &core.DeadlockError{Cycle: cyc, TaskNames: names}
}

// siteStats holds the site's atomic counters.
type siteStats struct {
	publishes        atomic.Int64
	publishErrors    atomic.Int64
	checks           atomic.Int64
	checkErrors      atomic.Int64
	snapshotsDropped atomic.Int64
	deadlocks        atomic.Int64
	withdrawFailures atomic.Int64
}

// SiteStats is a point-in-time copy of a site's counters.
type SiteStats struct {
	Publishes        int64 // snapshots successfully published
	PublishErrors    int64 // publish rounds lost to store errors
	Checks           int64 // global analyses completed
	CheckErrors      int64 // check rounds lost to store errors
	SnapshotsDropped int64 // undecodable remote snapshots skipped
	Deadlocks        int64 // distinct deadlock reports delivered
	WithdrawFailures int64 // Close could not remove the snapshot key
}

// Stats returns a snapshot of the site's counters.
func (s *Site) Stats() SiteStats {
	return SiteStats{
		Publishes:        s.stats.publishes.Load(),
		PublishErrors:    s.stats.publishErrors.Load(),
		Checks:           s.stats.checks.Load(),
		CheckErrors:      s.stats.checkErrors.Load(),
		SnapshotsDropped: s.stats.snapshotsDropped.Load(),
		Deadlocks:        s.stats.deadlocks.Load(),
		WithdrawFailures: s.stats.withdrawFailures.Load(),
	}
}
