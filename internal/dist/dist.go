// Package dist implements one-phase, fault-tolerant distributed deadlock
// detection (§5.2 of the paper). Each participating process runs a Site: a
// local verifier in observe mode plus a background loop that, every period,
//
//  1. publishes the site's blocked statuses to the shared store (package
//     store, the Redis stand-in), and
//  2. fetches every other site's published snapshot, merges it with the
//     live local state, and runs cycle analysis on the global view.
//
// The algorithm is one-phase because a blocked status is a pure function of
// the blocked task's own registration vector (§2.2): sites never coordinate
// or vote — each independently reaches the same verdict from the merged
// view. It is fault-tolerant because snapshots are self-contained
// overwrites: a site that crashes and restarts simply republishes, the
// reconnecting store.Client rides out store restarts, and a corrupt
// snapshot is dropped (counted in SiteStats) without wedging anyone else's
// check. A *stale* snapshot — a site that died without withdrawing its key
// — is deliberately kept: its tasks were genuinely blocked when it was
// published and, with the site gone, can never advance, so any cycle it
// participates in is a real, permanent deadlock (and an internally acyclic
// stale snapshot can never fabricate one, because per-site snapshots are
// consistent).
//
// The round is incremental end to end. A site publishes a full base
// snapshot into the "base" field of its store hash, then per round only a
// cumulative delta against that base into the "delta" field (overwritten
// in place — no chains), re-basing every K publishes or whenever the delta
// would outgrow the full set; when the local state did not change, it
// publishes nothing at all. Publish and fetch share one pipelined store
// round trip: the round's writes plus a single MGETP that returns every
// site's fields — including the site's own, which doubles as a liveness
// echo (a restarted, empty store is detected from the same reply and
// healed by an immediate full republish, preserving the crash-recovery
// story above). Fetched peers are cached decoded, keyed by seq: an
// unchanged peer costs a header peek, a changed one a delta apply, and a
// corrupt delta falls back to that peer's base snapshot. When nothing
// changed anywhere — no peer seq advanced, local state version identical —
// the graph build and cycle analysis are skipped and the previous verdict
// is returned.
//
// Task and phaser IDs are made globally unique by offsetting each site's
// verifier with core.WithIDBase(siteID << SiteIDShift), so merged snapshots
// never alias and a report names the owning site of every task.
package dist

import (
	"bytes"
	"errors"
	"fmt"
	"log"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"armus/internal/clock"
	"armus/internal/core"
	"armus/internal/deps"
	"armus/internal/store"
	"armus/internal/trace"
)

// DefaultPeriod is the publish/check period of the paper's distributed
// evaluation (§6.2: sites verify every 200 ms).
const DefaultPeriod = 200 * time.Millisecond

// SiteIDShift is the bit position of the site ID inside task and phaser
// IDs: site s mints IDs in [s<<SiteIDShift, (s+1)<<SiteIDShift), giving
// every site 2^32 local IDs with no cross-site collisions.
const SiteIDShift = 32

// keyPrefix namespaces the per-site snapshot keys in the shared store; each
// site overwrites only its own key and scans the prefix for everyone's.
const keyPrefix = "armus:site:"

// defaultFullEvery is how many delta publishes may ride one base snapshot
// before the site re-bases (publishes a fresh full snapshot). It bounds
// the cumulative delta's growth and the blast radius of a lost write.
const defaultFullEvery = 16

// ErrSiteClosed is returned by PublishOnce and CheckOnce after Close: a
// closed site must not re-publish the snapshot Close withdrew.
var ErrSiteClosed = errors.New("dist: site is closed")

// SiteOf recovers the publishing site of a distributed task or phaser ID
// (0 for IDs minted by a non-distributed verifier).
func SiteOf(id int64) int { return int(id >> SiteIDShift) }

// Option configures NewSite.
type Option func(*Site)

// WithModel selects the graph model for the site's global analysis
// (default deps.ModelAuto, the adaptive §5.1 policy).
func WithModel(m deps.Model) Option { return func(s *Site) { s.model = m } }

// WithPeriod sets the publish/check period (default DefaultPeriod).
func WithPeriod(d time.Duration) Option { return func(s *Site) { s.period = d } }

// WithClock injects the clock driving the publish/check loop (default the
// real time.Ticker clock). Tests pass a *clock.Fake and step rounds
// deterministically instead of sleeping through periods.
func WithClock(c clock.Clock) Option { return func(s *Site) { s.clock = c } }

// WithFullSnapshotEvery sets how many delta publishes may ride one base
// snapshot before the site re-publishes a full base (default 16). Lower
// values trade publish bandwidth for faster convergence after a lost
// write; 1 effectively disables deltas.
func WithFullSnapshotEvery(k int) Option {
	return func(s *Site) {
		if k > 0 {
			s.fullEvery = k
		}
	}
}

// WithVerifierTrace taps the site's local verifier with a trace recorder
// (core.WithTraceRecorder): every local transition of this site — block,
// unblock, register, arrive, drop — is recorded for later replay. The
// site's global-check verdicts are not trace events (they are derived
// state, recomputed by the replayer's observe+dist pipeline); the trace is
// the site's local contribution to the cluster.
func WithVerifierTrace(r *trace.Recorder) Option {
	return func(s *Site) { s.rec = r }
}

// WithVerifierMode overrides the mode of the site's local verifier. The
// default is core.ModeObserve: blocked statuses are recorded for publishing
// but no local checker runs (the global loop is the checker). ModeOff gives
// the unchecked baseline of Figure 7. Avoidance is unavailable distributed,
// exactly as in the paper (§5.2).
func WithVerifierMode(m core.Mode) Option { return func(s *Site) { s.mode = m } }

// WithOnDeadlock installs the handler for deadlocks found by the site's
// global check. The default logs the report. The handler runs on the
// site's loop goroutine; a given cycle is reported once until it changes.
func WithOnDeadlock(f func(*core.DeadlockError)) Option {
	return func(s *Site) { s.onDeadlock = f }
}

// peerView is one remote site's decoded, cached contribution to the merged
// view: the last decoded base snapshot plus the view after applying the
// peer's current cumulative delta. Both are refreshed only when the
// corresponding seq advances; view entries alias base/delta decode output
// and are treated as read-only.
type peerView struct {
	baseSeq  uint64
	viewSeq  uint64
	base     []deps.Blocked
	view     []deps.Blocked
	applyBuf []deps.Blocked
	seen     bool // per-round mark; unseen peers were withdrawn
}

// Site is one participant of a distributed program: it owns the process's
// local verifier and the publish/check loop of the one-phase algorithm.
type Site struct {
	id     int
	skey   string
	model  deps.Model
	period time.Duration
	mode   core.Mode
	clock  clock.Clock

	v          *core.Verifier
	client     *store.Client
	onDeadlock func(*core.DeadlockError)
	rec        *trace.Recorder

	stats siteStats

	// pubMu serialises publishing against Close so a PublishOnce racing
	// Close can never recreate the key Close just withdrew (the store
	// client transparently redials, so closing it is not enough). It also
	// owns the publisher's state: the reusable snapshot buffer, the copy
	// of the published base, the seq counters and the delta scratch.
	pubMu        sync.Mutex
	pubPipe      *store.Pipeline
	snapBuf      []deps.Blocked
	baseSnap     []deps.Blocked // deep copy of the published base snapshot
	pubSeq       uint64         // seq of the current published view
	baseSeq      uint64         // seq of the published base
	havePub      bool           // at least one base was published
	forceFull    bool           // next publish must re-base
	lastVer      uint64         // deps.State version at the last publish
	sinceFull    int            // delta publishes since the last base
	fullEvery    int
	removedBuf   []deps.TaskID
	upsertBuf    []deps.Blocked
	pubPayload   []byte
	pubErrStreak int

	// chkMu owns the check round's reusable buffers, the per-peer view
	// cache and the graph builder, so the periodic global analysis does
	// not re-decode unchanged peers or re-allocate the graph every round.
	chkMu           sync.Mutex
	chkPipe         *store.Pipeline
	chkBuf          []deps.Blocked
	mergedBuf       []deps.Blocked
	builder         *deps.Builder
	peers           map[string]*peerView
	lastAnalysisOK  bool
	lastAnalysisVer uint64
	lastRep         *core.DeadlockError

	mu      sync.Mutex
	started bool
	closed  bool
	stop    chan struct{}
	done    chan struct{}
}

// NewSite creates site id connected to the store at addr. IDs minted by
// the site's verifier are offset by id << SiteIDShift so they are globally
// unique; ids must therefore be distinct across the cluster (and small
// enough to leave the local ID space intact, i.e. 0 <= id < 2^31). The
// loop is not running until Start.
func NewSite(id int, addr string, opts ...Option) *Site {
	s := &Site{
		id:        id,
		skey:      keyPrefix + strconv.Itoa(id),
		model:     deps.ModelAuto,
		period:    DefaultPeriod,
		mode:      core.ModeObserve,
		clock:     clock.Real{},
		client:    store.Dial(addr),
		builder:   deps.NewBuilder(),
		fullEvery: defaultFullEvery,
		peers:     make(map[string]*peerView),
	}
	for _, o := range opts {
		o(s)
	}
	s.pubPipe = s.client.Pipeline()
	s.chkPipe = s.client.Pipeline()
	if s.onDeadlock == nil {
		s.onDeadlock = func(e *core.DeadlockError) { log.Printf("armus: site %d: %v", id, e) }
	}
	copts := []core.Option{
		core.WithMode(s.mode),
		core.WithModel(s.model),
		core.WithIDBase(int64(id) << SiteIDShift),
	}
	if s.rec != nil {
		if s.rec.Label() == "" {
			s.rec.SetLabel(fmt.Sprintf("site %d", id))
		}
		copts = append(copts, core.WithTraceRecorder(s.rec))
	}
	s.v = core.New(copts...)
	return s
}

// ID returns the site's cluster-unique identifier.
func (s *Site) ID() int { return s.id }

// Verifier returns the site's local verifier; the application creates its
// tasks and phasers through it.
func (s *Site) Verifier() *core.Verifier { return s.v }

// StoreStats returns the traffic counters of the site's store client (one
// client serves both halves of the round).
func (s *Site) StoreStats() store.ClientStats { return s.client.Stats() }

// Start launches the publish/check loop. Idempotent; a closed site does
// not restart.
func (s *Site) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.closed {
		return
	}
	s.started = true
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go s.loop()
}

// Close stops the loop, withdraws the site's snapshot from the store
// (best-effort), and closes the client and the local verifier. Idempotent.
func (s *Site) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	started := s.started
	s.mu.Unlock()
	if started {
		close(s.stop)
		<-s.done
	}
	s.pubMu.Lock()
	defer s.pubMu.Unlock()
	if _, err := s.client.Del(s.key()); err != nil {
		// The snapshot could not be withdrawn (store down?). Survivors will
		// keep merging it as a stale snapshot — harmless while acyclic, but
		// the operator should know it was left behind.
		s.stats.withdrawFailures.Add(1)
		log.Printf("armus: site %d: could not withdraw snapshot on close: %v", s.id, err)
	}
	s.client.Close()
	s.v.Close()
}

func (s *Site) key() string { return s.skey }

func (s *Site) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// loop is the site's verification round: one pipelined publish+check every
// period. Errors are counted, never fatal — the next round retries, which
// together with the reconnecting client is the whole §5.2 fault-tolerance
// story. Publish failures are surfaced separately from check failures
// (RoundOnce logs the former; the loop logs the latter), each once per
// error streak so a long outage does not spam the log every period.
func (s *Site) loop() {
	defer close(s.done)
	ticker := s.clock.NewTicker(s.period)
	defer ticker.Stop()
	var lastReported []byte
	var fp fpScratch
	chkErrStreak := 0
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C():
		}
		rep, err := s.RoundOnce()
		if err != nil {
			chkErrStreak++
			if chkErrStreak == 1 {
				log.Printf("armus: site %d: check failed (will retry next round): %v", s.id, err)
			}
			continue
		}
		if chkErrStreak > 0 {
			log.Printf("armus: site %d: check recovered after %d failed rounds", s.id, chkErrStreak)
			chkErrStreak = 0
		}
		if rep == nil {
			lastReported = lastReported[:0]
			continue
		}
		b := appendFingerprint(&fp, rep.Cycle)
		if !bytes.Equal(b, lastReported) {
			lastReported = append(lastReported[:0], b...)
			s.stats.deadlocks.Add(1)
			s.onDeadlock(rep)
		}
	}
}

// fpScratch holds the reusable buffers of appendFingerprint.
type fpScratch struct {
	ids []int64
	buf []byte
}

// appendFingerprint identifies a cycle by its sorted task set, so the loop
// reports a persisting deadlock once rather than once per period. The
// scratch buffers are reused: a cycle that persists across rounds costs no
// allocation per round. The returned slice aliases sc.buf and is valid
// until the next call.
func appendFingerprint(sc *fpScratch, c *deps.Cycle) []byte {
	sc.ids = sc.ids[:0]
	for _, t := range c.Tasks {
		sc.ids = append(sc.ids, int64(t))
	}
	slices.Sort(sc.ids)
	sc.buf = sc.buf[:0]
	for _, id := range sc.ids {
		sc.buf = strconv.AppendInt(sc.buf, id, 10)
		sc.buf = append(sc.buf, ',')
	}
	return sc.buf
}

// fingerprint is the allocation-per-call string form of appendFingerprint
// (tests compare fingerprints across cycle permutations).
func fingerprint(c *deps.Cycle) string {
	var sc fpScratch
	return string(appendFingerprint(&sc, c))
}

// pubPlan describes what queuePublishLocked decided to write this round,
// so the caller can commit the publisher state only after the store
// acknowledged the writes.
type pubPlan struct {
	changed bool // commands were queued
	full    bool // a fresh base was queued (vs a delta)
	seq     uint64
	ver     uint64
	cmds    int
}

// queuePublishLocked snapshots the local state and queues this round's
// publish commands (nothing when the state is unchanged; a cumulative
// delta against the published base normally; a DEL plus fresh base every
// fullEvery publishes, on the first publish, when the delta would outgrow
// the full set, or after a detected store loss). Caller holds pubMu.
func (s *Site) queuePublishLocked(p *store.Pipeline) pubPlan {
	ver := s.v.State().Version()
	if s.havePub && !s.forceFull && ver == s.lastVer {
		return pubPlan{ver: ver}
	}
	s.snapBuf = s.v.State().SnapshotInto(s.snapBuf)
	seq := s.pubSeq + 1
	full := !s.havePub || s.forceFull || s.sinceFull >= s.fullEvery
	if !full {
		s.removedBuf, s.upsertBuf = diffSnapshots(s.baseSnap, s.snapBuf, s.removedBuf[:0], s.upsertBuf[:0])
		if len(s.removedBuf)+len(s.upsertBuf) > len(s.snapBuf) {
			full = true // the delta outgrew the full set: cheaper to re-base
		}
	}
	if full {
		s.pubPayload = appendSnapshot(s.pubPayload[:0], s.id, seq, s.snapBuf)
		// DEL first clears the stale delta field (and any legacy plain
		// key), so a reader can never pair the new base with an old delta.
		p.Del(s.key())
		p.HSet(s.key(), "base", s.pubPayload)
		return pubPlan{changed: true, full: true, seq: seq, ver: ver, cmds: 2}
	}
	s.pubPayload = appendDelta(s.pubPayload[:0], s.id, s.baseSeq, seq, s.removedBuf, s.upsertBuf)
	p.HSet(s.key(), "delta", s.pubPayload)
	return pubPlan{changed: true, full: false, seq: seq, ver: ver, cmds: 1}
}

// commitPublishLocked applies a store-acknowledged publish plan to the
// publisher state. Caller holds pubMu.
func (s *Site) commitPublishLocked(plan pubPlan) {
	s.stats.publishes.Add(1)
	if !plan.changed {
		s.stats.publishSkips.Add(1)
		return
	}
	s.pubSeq = plan.seq
	s.lastVer = plan.ver
	s.havePub = true
	s.forceFull = false
	if plan.full {
		s.baseSeq = plan.seq
		s.baseSnap = copySnapshot(s.baseSnap, s.snapBuf)
		s.sinceFull = 0
		s.stats.fullSnapshots.Add(1)
	} else {
		s.sinceFull++
		s.stats.deltaSnapshots.Add(1)
	}
}

// copySnapshot deep-copies src into dst, reusing dst's entry capacity. The
// published base must not alias the snapshot buffer: the next SnapshotInto
// overwrites that buffer in place.
func copySnapshot(dst, src []deps.Blocked) []deps.Blocked {
	for len(dst) < len(src) {
		dst = append(dst, deps.Blocked{})
	}
	dst = dst[:len(src)]
	for i := range src {
		dst[i].Task = src[i].Task
		dst[i].WaitsFor = append(dst[i].WaitsFor[:0], src[i].WaitsFor...)
		dst[i].Regs = append(dst[i].Regs[:0], src[i].Regs...)
	}
	return dst
}

// republishFullLocked force-publishes a fresh base snapshot, healing a
// store that lost the site's fields (restart, eviction). Caller holds
// pubMu.
func (s *Site) republishFullLocked() error {
	s.forceFull = true
	s.stats.storeRepairs.Add(1)
	plan := s.queuePublishLocked(s.pubPipe)
	reps, err := s.pubPipe.Exec()
	if err == nil {
		for _, r := range reps {
			if r.Err != nil {
				err = r.Err
				break
			}
		}
	}
	if err != nil {
		s.stats.publishErrors.Add(1)
		return err
	}
	s.commitPublishLocked(plan)
	return nil
}

// PublishOnce publishes the local blocked statuses: a delta when the state
// changed since the last publish, nothing (beyond a liveness probe) when
// it did not, a full base snapshot on the re-base cadence. The store's
// reply doubles as a health check — if the hash does not hold the fields
// the site believes it published (a restarted store starts empty), a full
// snapshot is republished immediately. One round of the publish half of
// the loop; exported for tests and for applications that drive their own
// schedule. Snapshots are deep copies (deps.State copies statuses on both
// write and read), so a publish can never observe torn data from a
// concurrently re-blocking task; all buffers are reused across rounds.
func (s *Site) PublishOnce() error {
	s.pubMu.Lock()
	defer s.pubMu.Unlock()
	if s.isClosed() {
		return ErrSiteClosed
	}
	plan := s.queuePublishLocked(s.pubPipe)
	s.pubPipe.HLen(s.key())
	reps, err := s.pubPipe.Exec()
	if err != nil {
		s.stats.publishErrors.Add(1)
		return err
	}
	for _, r := range reps[:len(reps)-1] {
		if r.Err != nil {
			s.stats.publishErrors.Add(1)
			return r.Err
		}
	}
	s.commitPublishLocked(plan)
	wantFields := 1
	if s.pubSeq != s.baseSeq {
		wantFields = 2 // base + live delta
	}
	if !s.havePub {
		wantFields = 0
	}
	if reps[len(reps)-1].N != wantFields {
		return s.republishFullLocked()
	}
	return nil
}

// notePublishOutcomeLocked counts and logs the loop's publish outcomes:
// the first failure of a streak and the eventual recovery, so publish
// errors are visible in site logs distinctly from check errors without one
// line per failed period. Caller holds pubMu.
func (s *Site) notePublishOutcomeLocked(err error) {
	if err != nil {
		s.stats.publishErrors.Add(1)
		s.pubErrStreak++
		if s.pubErrStreak == 1 {
			log.Printf("armus: site %d: publish failed (peers keep the last snapshot): %v", s.id, err)
		}
		return
	}
	if s.pubErrStreak > 0 {
		log.Printf("armus: site %d: publish recovered after %d failed rounds", s.id, s.pubErrStreak)
		s.pubErrStreak = 0
	}
}

// ownExpect is what the publisher believes the store holds for its own
// key; the MGETP echo is validated against it.
type ownExpect struct {
	baseSeq   uint64
	seq       uint64
	published bool
}

// ingestLocked refreshes the per-peer view cache from one MGETP reply.
// Unchanged peers (same base and view seqs) cost two header peeks; a
// changed delta is decoded and applied over the cached base; a changed
// base is re-decoded in full. Corrupt payloads never wedge the round: a
// corrupt delta falls back to that peer's base view, a corrupt base keeps
// the previous good view (or drops the peer if there was none), and both
// are counted. Peers absent from the reply were withdrawn and are
// evicted. When exp is non-nil the site's own fields are validated against
// it and ownIntact reports whether the store still holds what the site
// published (false after a store restart). Caller holds chkMu.
func (s *Site) ingestLocked(entries []store.Entry, exp *ownExpect) (viewsChanged, ownIntact bool) {
	ownIntact = true
	own := s.key()
	ownSeen := false
	for _, pv := range s.peers {
		pv.seen = false
	}
	for i := 0; i < len(entries); {
		key := entries[i].Key
		var basePayload, deltaPayload, plainPayload []byte
		for ; i < len(entries) && entries[i].Key == key; i++ {
			switch entries[i].Field {
			case "base":
				basePayload = entries[i].Value
			case "delta":
				deltaPayload = entries[i].Value
			case "":
				plainPayload = entries[i].Value
			}
		}
		if key == own {
			if exp != nil && exp.published {
				ownSeen = true
				okBase := false
				if basePayload != nil {
					_, bs, err := peekSnapshotSeq(basePayload)
					okBase = err == nil && bs == exp.baseSeq
				}
				okDelta := exp.seq == exp.baseSeq // no delta expected
				if !okDelta && deltaPayload != nil {
					_, df, dt, err := peekDeltaSeqs(deltaPayload)
					okDelta = err == nil && df == exp.baseSeq && dt == exp.seq
				}
				if !okBase || !okDelta {
					ownIntact = false
				}
			}
			continue
		}
		if basePayload == nil {
			// Sites that predate the hash layout publish a plain key; treat
			// it as a base-only snapshot (tests also write these directly).
			basePayload = plainPayload
		}
		pv := s.peers[key]
		if basePayload == nil {
			// A delta with no base: the publisher is mid-repair or the
			// store lost the base field. Keep the last good view.
			if pv != nil {
				pv.seen = true
			} else {
				s.stats.snapshotsDropped.Add(1)
			}
			continue
		}
		_, bseq, err := peekSnapshotSeq(basePayload)
		if err != nil {
			if pv != nil {
				pv.seen = true // keep the last good view
			}
			s.stats.snapshotsDropped.Add(1)
			continue
		}
		target := bseq
		haveDelta := false
		var deltaTo uint64
		if deltaPayload != nil {
			_, df, dt, derr := peekDeltaSeqs(deltaPayload)
			if derr == nil && df == bseq {
				haveDelta, deltaTo, target = true, dt, dt
			} else {
				// Corrupt header or a delta against a different base (the
				// publisher re-based between our reads): the base alone is
				// a consistent, self-contained view.
				s.stats.deltaFallbacks.Add(1)
			}
		}
		if pv != nil && pv.baseSeq == bseq && pv.viewSeq == target {
			pv.seen = true
			continue // unchanged: no decode, no rebuild
		}
		if pv == nil {
			_, _, snap, err := decodeSnapshot(basePayload)
			if err != nil {
				s.stats.snapshotsDropped.Add(1)
				continue
			}
			pv = &peerView{base: snap, baseSeq: bseq, view: snap, viewSeq: bseq, seen: true}
			s.peers[key] = pv
			viewsChanged = true
		} else {
			pv.seen = true
			if pv.baseSeq != bseq {
				_, _, snap, err := decodeSnapshot(basePayload)
				if err != nil {
					s.stats.snapshotsDropped.Add(1)
					continue // keep the last good view
				}
				pv.base, pv.baseSeq = snap, bseq
				pv.view, pv.viewSeq = snap, bseq
				viewsChanged = true
			}
		}
		if haveDelta && pv.viewSeq != deltaTo {
			_, _, _, removed, upserts, err := decodeDelta(deltaPayload)
			if err != nil {
				// Corrupt delta body: fall back to the base snapshot. The
				// publisher's next overwrite (or re-base) heals the field.
				s.stats.deltaFallbacks.Add(1)
				if pv.viewSeq != pv.baseSeq {
					pv.view, pv.viewSeq = pv.base, pv.baseSeq
					viewsChanged = true
				}
				continue
			}
			pv.applyBuf = applyDelta(pv.applyBuf[:0], pv.base, removed, upserts)
			pv.view, pv.viewSeq = pv.applyBuf, deltaTo
			viewsChanged = true
		} else if !haveDelta && pv.viewSeq != bseq {
			// The delta disappeared (publisher re-based): back to the base.
			pv.view, pv.viewSeq = pv.base, bseq
			viewsChanged = true
		}
	}
	for key, pv := range s.peers {
		if !pv.seen {
			delete(s.peers, key)
			viewsChanged = true
		}
	}
	if exp != nil && exp.published && !ownSeen {
		ownIntact = false // the store does not hold our key at all
	}
	return viewsChanged, ownIntact
}

// analyzeLocked merges the live local state with the cached peer views and
// runs cycle analysis — unless nothing changed since the previous analysis
// (no peer view advanced, local state version identical), in which case
// the cached verdict is returned without rebuilding the graph. Caller
// holds chkMu.
func (s *Site) analyzeLocked(viewsChanged bool) *core.DeadlockError {
	// Version is read before the snapshot: a mutation racing this round
	// may make the cached verdict conservative (recomputed next round),
	// never stale.
	ver := s.v.State().Version()
	if !viewsChanged && s.lastAnalysisOK && ver == s.lastAnalysisVer {
		s.stats.checks.Add(1)
		s.stats.analysisSkips.Add(1)
		return s.lastRep
	}
	s.chkBuf = s.v.State().SnapshotInto(s.chkBuf)
	merged := append(s.mergedBuf[:0], s.chkBuf...)
	for _, pv := range s.peers {
		merged = append(merged, pv.view...)
	}
	s.mergedBuf = merged
	a := s.builder.Build(s.model, merged)
	s.stats.checks.Add(1)
	cyc := a.FindDeadlock(merged)
	var rep *core.DeadlockError
	if cyc != nil {
		rep = s.newReport(cyc)
	}
	s.lastAnalysisOK = true
	s.lastAnalysisVer = ver
	s.lastRep = rep
	return rep
}

// CheckOnce fetches every site's published fields in one MGETP round trip,
// merges them (through the seq-gated peer cache) with the live local
// state, and runs cycle analysis on the global view. It returns the
// deadlock report, or (nil, nil) when the global state is deadlock free.
// Undecodable snapshots are dropped (counted in SiteStats) rather than
// failing the check.
func (s *Site) CheckOnce() (*core.DeadlockError, error) {
	if s.isClosed() {
		return nil, ErrSiteClosed
	}
	s.chkMu.Lock()
	defer s.chkMu.Unlock()
	s.chkPipe.MGetPrefix(keyPrefix)
	reps, err := s.chkPipe.Exec()
	if err != nil {
		s.stats.checkErrors.Add(1)
		return nil, err
	}
	entries, err := reps[0].Entries()
	if err != nil {
		s.stats.checkErrors.Add(1)
		return nil, err
	}
	viewsChanged, _ := s.ingestLocked(entries, nil)
	return s.analyzeLocked(viewsChanged), nil
}

// AnalyzeCached runs cycle analysis on the live local state merged with
// the peer views from the most recent fetch, without touching the store.
// It is exact only while no peer has published since that fetch — callers
// that drive the cluster schedule themselves (the trace replayer) know
// this; the background loop never uses it.
func (s *Site) AnalyzeCached() (*core.DeadlockError, error) {
	if s.isClosed() {
		return nil, ErrSiteClosed
	}
	s.chkMu.Lock()
	defer s.chkMu.Unlock()
	return s.analyzeLocked(false), nil
}

// RoundOnce runs one full verification round — the publish and fetch
// halves share a single pipelined store round trip (this round's writes,
// then one MGETP covering every site) — and analyses the merged view. The
// site's own fields in the MGETP reply double as a liveness echo: when the
// store no longer holds what was published (a restart emptied it), a full
// snapshot is republished immediately, in the same round. Publish errors
// are counted and logged per streak but do not fail the round (the check
// half still runs on the local view); the returned error is a check
// failure.
func (s *Site) RoundOnce() (*core.DeadlockError, error) {
	if s.isClosed() {
		return nil, ErrSiteClosed
	}
	s.pubMu.Lock()
	defer s.pubMu.Unlock()
	s.chkMu.Lock()
	defer s.chkMu.Unlock()
	plan := s.queuePublishLocked(s.chkPipe)
	s.chkPipe.MGetPrefix(keyPrefix)
	reps, err := s.chkPipe.Exec()
	if err != nil {
		s.notePublishOutcomeLocked(err)
		s.stats.checkErrors.Add(1)
		return nil, err
	}
	var pubErr error
	for _, r := range reps[:len(reps)-1] {
		if r.Err != nil {
			pubErr = r.Err
			break
		}
	}
	if pubErr == nil {
		s.commitPublishLocked(plan)
	}
	s.notePublishOutcomeLocked(pubErr)
	entries, err := reps[len(reps)-1].Entries()
	if err != nil {
		s.stats.checkErrors.Add(1)
		return nil, err
	}
	var exp *ownExpect
	if pubErr == nil {
		exp = &ownExpect{baseSeq: s.baseSeq, seq: s.pubSeq, published: s.havePub}
	}
	viewsChanged, ownIntact := s.ingestLocked(entries, exp)
	if !ownIntact {
		// The store lost our fields (restart): heal before peers' next
		// fetch. A failure here is counted; the next round retries.
		_ = s.republishFullLocked()
	}
	return s.analyzeLocked(viewsChanged), nil
}

// newReport wraps a cycle as a *core.DeadlockError, naming local tasks
// from the verifier and remote tasks by their owning site.
func (s *Site) newReport(cyc *deps.Cycle) *core.DeadlockError {
	names := make(map[deps.TaskID]string, len(cyc.Tasks))
	for _, t := range cyc.Tasks {
		if n := s.v.TaskName(t); n != "" {
			names[t] = n
		} else {
			names[t] = fmt.Sprintf("site%d.task%d", SiteOf(int64(t)), int64(t)&(1<<SiteIDShift-1))
		}
	}
	return &core.DeadlockError{Cycle: cyc, TaskNames: names}
}

// siteStats holds the site's atomic counters.
type siteStats struct {
	publishes        atomic.Int64
	publishErrors    atomic.Int64
	publishSkips     atomic.Int64
	fullSnapshots    atomic.Int64
	deltaSnapshots   atomic.Int64
	storeRepairs     atomic.Int64
	checks           atomic.Int64
	checkErrors      atomic.Int64
	analysisSkips    atomic.Int64
	snapshotsDropped atomic.Int64
	deltaFallbacks   atomic.Int64
	deadlocks        atomic.Int64
	withdrawFailures atomic.Int64
}

// SiteStats is a point-in-time copy of a site's counters.
type SiteStats struct {
	Publishes        int64 // publish rounds completed against a live store
	PublishErrors    int64 // publish rounds lost to store errors
	PublishSkips     int64 // publish rounds with nothing to write (state unchanged)
	FullSnapshots    int64 // full base snapshots published
	DeltaSnapshots   int64 // cumulative deltas published
	StoreRepairs     int64 // full republishes after the store lost our fields
	Checks           int64 // check rounds completed
	CheckErrors      int64 // check rounds lost to store errors
	AnalysisSkips    int64 // check rounds that reused the previous verdict
	SnapshotsDropped int64 // undecodable remote base snapshots skipped
	DeltaFallbacks   int64 // corrupt/mismatched remote deltas replaced by their base
	Deadlocks        int64 // distinct deadlock reports delivered
	WithdrawFailures int64 // Close could not remove the snapshot key
}

// Stats returns a snapshot of the site's counters.
func (s *Site) Stats() SiteStats {
	return SiteStats{
		Publishes:        s.stats.publishes.Load(),
		PublishErrors:    s.stats.publishErrors.Load(),
		PublishSkips:     s.stats.publishSkips.Load(),
		FullSnapshots:    s.stats.fullSnapshots.Load(),
		DeltaSnapshots:   s.stats.deltaSnapshots.Load(),
		StoreRepairs:     s.stats.storeRepairs.Load(),
		Checks:           s.stats.checks.Load(),
		CheckErrors:      s.stats.checkErrors.Load(),
		AnalysisSkips:    s.stats.analysisSkips.Load(),
		SnapshotsDropped: s.stats.snapshotsDropped.Load(),
		DeltaFallbacks:   s.stats.deltaFallbacks.Load(),
		Deadlocks:        s.stats.deadlocks.Load(),
		WithdrawFailures: s.stats.withdrawFailures.Load(),
	}
}
