package dist

import (
	"encoding/binary"
	"fmt"

	"armus/internal/deps"
)

// The snapshot wire format is a hand-rolled varint encoding rather than
// encoding/gob: payloads are written every period by every site, so they
// should be compact, allocation-light, and — because a snapshot may be read
// back by a site running a different build, or after the store returned a
// torn/corrupt value — every length must be validated before it is
// allocated. Layout:
//
// The siteID and seq header fields are diagnostic metadata: seq counts the
// publisher's rounds so an operator inspecting the store can tell a live
// snapshot from a frozen one. The checker itself never ages snapshots out
// by seq — a dead site's tasks stay genuinely blocked, so its last
// snapshot stays valid input (see the package comment).
//
//	magic "ARMUSD1"
//	uvarint siteID
//	uvarint seq
//	uvarint len(snap)
//	per Blocked:
//	    varint  Task
//	    uvarint len(WaitsFor)  then per Resource: varint Phaser, varint Phase
//	    uvarint len(Regs)      then per Reg:      varint Phaser, varint Phase
//
// Signed fields use zig-zag varints so distributed ID bases near the top of
// the int64 range still encode compactly enough and negatives round-trip.

// snapshotMagic versions the wire format; bump the trailing digit on any
// incompatible change so mixed-version clusters drop (rather than misparse)
// each other's snapshots.
const snapshotMagic = "ARMUSD1"

// maxSnapshotItems bounds every decoded length so a corrupt or hostile
// payload cannot make the checker allocate unbounded memory (mirroring the
// store's own maxBulk guard).
const maxSnapshotItems = 1 << 20

// encodeSnapshot serialises one site's blocked statuses.
func encodeSnapshot(siteID int, seq uint64, snap []deps.Blocked) []byte {
	buf := make([]byte, 0, len(snapshotMagic)+16+32*len(snap))
	buf = append(buf, snapshotMagic...)
	buf = binary.AppendUvarint(buf, uint64(siteID))
	buf = binary.AppendUvarint(buf, seq)
	buf = binary.AppendUvarint(buf, uint64(len(snap)))
	for _, b := range snap {
		buf = binary.AppendVarint(buf, int64(b.Task))
		buf = binary.AppendUvarint(buf, uint64(len(b.WaitsFor)))
		for _, r := range b.WaitsFor {
			buf = binary.AppendVarint(buf, int64(r.Phaser))
			buf = binary.AppendVarint(buf, r.Phase)
		}
		buf = binary.AppendUvarint(buf, uint64(len(b.Regs)))
		for _, reg := range b.Regs {
			buf = binary.AppendVarint(buf, int64(reg.Phaser))
			buf = binary.AppendVarint(buf, reg.Phase)
		}
	}
	return buf
}

// snapshotDecoder is a cursor over an encoded snapshot.
type snapshotDecoder struct {
	buf []byte
}

func (d *snapshotDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		return 0, fmt.Errorf("dist: truncated snapshot")
	}
	d.buf = d.buf[n:]
	return v, nil
}

func (d *snapshotDecoder) varint() (int64, error) {
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		return 0, fmt.Errorf("dist: truncated snapshot")
	}
	d.buf = d.buf[n:]
	return v, nil
}

func (d *snapshotDecoder) length() (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	// Every encoded item costs at least one byte, so a count larger than
	// the remaining payload is corrupt — reject it BEFORE allocating, or a
	// 15-byte payload claiming 2^20 items would cost tens of MB per check.
	if v > maxSnapshotItems || v > uint64(len(d.buf)) {
		return 0, fmt.Errorf("dist: snapshot length %d exceeds limit", v)
	}
	return int(v), nil
}

// decodeSnapshot parses a payload produced by encodeSnapshot. Any
// malformation is an error: the caller drops the snapshot (counting it) so
// one corrupt entry can never wedge a global check.
func decodeSnapshot(payload []byte) (siteID int, seq uint64, snap []deps.Blocked, err error) {
	if len(payload) < len(snapshotMagic) || string(payload[:len(snapshotMagic)]) != snapshotMagic {
		return 0, 0, nil, fmt.Errorf("dist: bad snapshot magic")
	}
	d := &snapshotDecoder{buf: payload[len(snapshotMagic):]}
	id, err := d.uvarint()
	if err != nil {
		return 0, 0, nil, err
	}
	if seq, err = d.uvarint(); err != nil {
		return 0, 0, nil, err
	}
	n, err := d.length()
	if err != nil {
		return 0, 0, nil, err
	}
	snap = make([]deps.Blocked, 0, n)
	for i := 0; i < n; i++ {
		var b deps.Blocked
		t, err := d.varint()
		if err != nil {
			return 0, 0, nil, err
		}
		b.Task = deps.TaskID(t)
		nw, err := d.length()
		if err != nil {
			return 0, 0, nil, err
		}
		b.WaitsFor = make([]deps.Resource, 0, nw)
		for j := 0; j < nw; j++ {
			q, err := d.varint()
			if err != nil {
				return 0, 0, nil, err
			}
			ph, err := d.varint()
			if err != nil {
				return 0, 0, nil, err
			}
			b.WaitsFor = append(b.WaitsFor, deps.Resource{Phaser: deps.PhaserID(q), Phase: ph})
		}
		nr, err := d.length()
		if err != nil {
			return 0, 0, nil, err
		}
		b.Regs = make([]deps.Reg, 0, nr)
		for j := 0; j < nr; j++ {
			q, err := d.varint()
			if err != nil {
				return 0, 0, nil, err
			}
			ph, err := d.varint()
			if err != nil {
				return 0, 0, nil, err
			}
			b.Regs = append(b.Regs, deps.Reg{Phaser: deps.PhaserID(q), Phase: ph})
		}
		snap = append(snap, b)
	}
	if len(d.buf) != 0 {
		return 0, 0, nil, fmt.Errorf("dist: %d trailing bytes after snapshot", len(d.buf))
	}
	return int(id), seq, snap, nil
}
