package dist

import (
	"encoding/binary"
	"fmt"

	"armus/internal/deps"
)

// The snapshot wire format is a hand-rolled varint encoding rather than
// encoding/gob: payloads are written every period by every site, so they
// should be compact, allocation-light, and — because a snapshot may be read
// back by a site running a different build, or after the store returned a
// torn/corrupt value — every length must be validated before it is
// allocated. Layout:
//
// The siteID and seq header fields are diagnostic metadata: seq counts the
// publisher's rounds so an operator inspecting the store can tell a live
// snapshot from a frozen one. The checker itself never ages snapshots out
// by seq — a dead site's tasks stay genuinely blocked, so its last
// snapshot stays valid input (see the package comment).
//
//	magic "ARMUSD1"
//	uvarint siteID
//	uvarint seq
//	uvarint len(snap)
//	per Blocked:
//	    varint  Task
//	    uvarint len(WaitsFor)  then per Resource: varint Phaser, varint Phase
//	    uvarint len(Regs)      then per Reg:      varint Phaser, varint Phase
//
// Signed fields use zig-zag varints so distributed ID bases near the top of
// the int64 range still encode compactly enough and negatives round-trip.

// snapshotMagic versions the wire format; bump the trailing digit on any
// incompatible change so mixed-version clusters drop (rather than misparse)
// each other's snapshots.
const snapshotMagic = "ARMUSD1"

// maxSnapshotItems bounds every decoded length so a corrupt or hostile
// payload cannot make the checker allocate unbounded memory (mirroring the
// store's own maxBulk guard).
const maxSnapshotItems = 1 << 20

// appendBlocked serialises one blocked status (shared by the snapshot and
// delta encoders).
func appendBlocked(buf []byte, b *deps.Blocked) []byte {
	buf = binary.AppendVarint(buf, int64(b.Task))
	buf = binary.AppendUvarint(buf, uint64(len(b.WaitsFor)))
	for _, r := range b.WaitsFor {
		buf = binary.AppendVarint(buf, int64(r.Phaser))
		buf = binary.AppendVarint(buf, r.Phase)
	}
	buf = binary.AppendUvarint(buf, uint64(len(b.Regs)))
	for _, reg := range b.Regs {
		buf = binary.AppendVarint(buf, int64(reg.Phaser))
		buf = binary.AppendVarint(buf, reg.Phase)
	}
	return buf
}

// appendSnapshot serialises one site's blocked statuses into buf.
func appendSnapshot(buf []byte, siteID int, seq uint64, snap []deps.Blocked) []byte {
	buf = append(buf, snapshotMagic...)
	buf = binary.AppendUvarint(buf, uint64(siteID))
	buf = binary.AppendUvarint(buf, seq)
	buf = binary.AppendUvarint(buf, uint64(len(snap)))
	for i := range snap {
		buf = appendBlocked(buf, &snap[i])
	}
	return buf
}

// encodeSnapshot serialises one site's blocked statuses.
func encodeSnapshot(siteID int, seq uint64, snap []deps.Blocked) []byte {
	return appendSnapshot(make([]byte, 0, len(snapshotMagic)+16+32*len(snap)), siteID, seq, snap)
}

// snapshotDecoder is a cursor over an encoded snapshot.
type snapshotDecoder struct {
	buf []byte
}

func (d *snapshotDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		return 0, fmt.Errorf("dist: truncated snapshot")
	}
	d.buf = d.buf[n:]
	return v, nil
}

func (d *snapshotDecoder) varint() (int64, error) {
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		return 0, fmt.Errorf("dist: truncated snapshot")
	}
	d.buf = d.buf[n:]
	return v, nil
}

func (d *snapshotDecoder) length() (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	// Every encoded item costs at least one byte, so a count larger than
	// the remaining payload is corrupt — reject it BEFORE allocating, or a
	// 15-byte payload claiming 2^20 items would cost tens of MB per check.
	if v > maxSnapshotItems || v > uint64(len(d.buf)) {
		return 0, fmt.Errorf("dist: snapshot length %d exceeds limit", v)
	}
	return int(v), nil
}

// blocked decodes one blocked status (shared by the snapshot and delta
// decoders).
func (d *snapshotDecoder) blocked() (deps.Blocked, error) {
	var b deps.Blocked
	t, err := d.varint()
	if err != nil {
		return b, err
	}
	b.Task = deps.TaskID(t)
	nw, err := d.length()
	if err != nil {
		return b, err
	}
	b.WaitsFor = make([]deps.Resource, 0, nw)
	for j := 0; j < nw; j++ {
		q, err := d.varint()
		if err != nil {
			return b, err
		}
		ph, err := d.varint()
		if err != nil {
			return b, err
		}
		b.WaitsFor = append(b.WaitsFor, deps.Resource{Phaser: deps.PhaserID(q), Phase: ph})
	}
	nr, err := d.length()
	if err != nil {
		return b, err
	}
	b.Regs = make([]deps.Reg, 0, nr)
	for j := 0; j < nr; j++ {
		q, err := d.varint()
		if err != nil {
			return b, err
		}
		ph, err := d.varint()
		if err != nil {
			return b, err
		}
		b.Regs = append(b.Regs, deps.Reg{Phaser: deps.PhaserID(q), Phase: ph})
	}
	return b, nil
}

// decodeSnapshot parses a payload produced by encodeSnapshot. Any
// malformation is an error: the caller drops the snapshot (counting it) so
// one corrupt entry can never wedge a global check.
func decodeSnapshot(payload []byte) (siteID int, seq uint64, snap []deps.Blocked, err error) {
	if len(payload) < len(snapshotMagic) || string(payload[:len(snapshotMagic)]) != snapshotMagic {
		return 0, 0, nil, fmt.Errorf("dist: bad snapshot magic")
	}
	d := &snapshotDecoder{buf: payload[len(snapshotMagic):]}
	id, err := d.uvarint()
	if err != nil {
		return 0, 0, nil, err
	}
	if seq, err = d.uvarint(); err != nil {
		return 0, 0, nil, err
	}
	n, err := d.length()
	if err != nil {
		return 0, 0, nil, err
	}
	snap = make([]deps.Blocked, 0, n)
	for i := 0; i < n; i++ {
		b, err := d.blocked()
		if err != nil {
			return 0, 0, nil, err
		}
		snap = append(snap, b)
	}
	if len(d.buf) != 0 {
		return 0, 0, nil, fmt.Errorf("dist: %d trailing bytes after snapshot", len(d.buf))
	}
	return int(id), seq, snap, nil
}

// peekSnapshotSeq reads a snapshot header without decoding the body, so an
// unchanged peer (same seq as the cached view) costs no allocation.
func peekSnapshotSeq(payload []byte) (siteID int, seq uint64, err error) {
	if len(payload) < len(snapshotMagic) || string(payload[:len(snapshotMagic)]) != snapshotMagic {
		return 0, 0, fmt.Errorf("dist: bad snapshot magic")
	}
	d := &snapshotDecoder{buf: payload[len(snapshotMagic):]}
	id, err := d.uvarint()
	if err != nil {
		return 0, 0, err
	}
	if seq, err = d.uvarint(); err != nil {
		return 0, 0, err
	}
	return int(id), seq, nil
}

// --- delta format -----------------------------------------------------
//
// A delta is the CUMULATIVE difference between a site's published base
// snapshot (seq baseSeq) and its current view (seq): tasks removed from
// the base, plus upserted blocked statuses (new or changed). Each site
// stores exactly one base field and one delta field in its hash; the
// delta is overwritten in place every round, so there are no chains to
// replay and any single lost write is healed by the next overwrite — the
// same self-contained-overwrite fault-tolerance story as full snapshots.
//
//	magic "ARMUSI1"
//	uvarint siteID
//	uvarint baseSeq            (base snapshot this delta applies to)
//	uvarint seq                (resulting view; must exceed baseSeq)
//	uvarint len(removed)       then per task: varint TaskID, strictly ascending
//	uvarint len(upserts)       then per Blocked (strictly ascending Task)

// deltaMagic versions the delta wire format (see snapshotMagic).
const deltaMagic = "ARMUSI1"

// appendDelta serialises a cumulative delta against the base snapshot
// into buf.
func appendDelta(buf []byte, siteID int, baseSeq, seq uint64, removed []deps.TaskID, upserts []deps.Blocked) []byte {
	buf = append(buf, deltaMagic...)
	buf = binary.AppendUvarint(buf, uint64(siteID))
	buf = binary.AppendUvarint(buf, baseSeq)
	buf = binary.AppendUvarint(buf, seq)
	buf = binary.AppendUvarint(buf, uint64(len(removed)))
	for _, t := range removed {
		buf = binary.AppendVarint(buf, int64(t))
	}
	buf = binary.AppendUvarint(buf, uint64(len(upserts)))
	for i := range upserts {
		buf = appendBlocked(buf, &upserts[i])
	}
	return buf
}

// encodeDelta serialises a cumulative delta into a fresh buffer.
func encodeDelta(siteID int, baseSeq, seq uint64, removed []deps.TaskID, upserts []deps.Blocked) []byte {
	buf := make([]byte, 0, len(deltaMagic)+24+8*len(removed)+32*len(upserts))
	return appendDelta(buf, siteID, baseSeq, seq, removed, upserts)
}

// decodeDelta parses a payload produced by encodeDelta, enforcing the
// ordering invariants (strictly ascending removed tasks and upserts, seq
// beyond baseSeq) so applyDelta stays a simple sorted merge. Any
// malformation is an error: the caller falls back to the base snapshot.
func decodeDelta(payload []byte) (siteID int, baseSeq, seq uint64, removed []deps.TaskID, upserts []deps.Blocked, err error) {
	if len(payload) < len(deltaMagic) || string(payload[:len(deltaMagic)]) != deltaMagic {
		return 0, 0, 0, nil, nil, fmt.Errorf("dist: bad delta magic")
	}
	d := &snapshotDecoder{buf: payload[len(deltaMagic):]}
	id, err := d.uvarint()
	if err != nil {
		return 0, 0, 0, nil, nil, err
	}
	if baseSeq, err = d.uvarint(); err != nil {
		return 0, 0, 0, nil, nil, err
	}
	if seq, err = d.uvarint(); err != nil {
		return 0, 0, 0, nil, nil, err
	}
	if seq <= baseSeq {
		return 0, 0, 0, nil, nil, fmt.Errorf("dist: delta seq %d not beyond base %d", seq, baseSeq)
	}
	nr, err := d.length()
	if err != nil {
		return 0, 0, 0, nil, nil, err
	}
	removed = make([]deps.TaskID, 0, nr)
	for i := 0; i < nr; i++ {
		t, err := d.varint()
		if err != nil {
			return 0, 0, 0, nil, nil, err
		}
		if i > 0 && deps.TaskID(t) <= removed[i-1] {
			return 0, 0, 0, nil, nil, fmt.Errorf("dist: delta removed tasks not ascending")
		}
		removed = append(removed, deps.TaskID(t))
	}
	nu, err := d.length()
	if err != nil {
		return 0, 0, 0, nil, nil, err
	}
	upserts = make([]deps.Blocked, 0, nu)
	for i := 0; i < nu; i++ {
		b, err := d.blocked()
		if err != nil {
			return 0, 0, 0, nil, nil, err
		}
		if i > 0 && b.Task <= upserts[i-1].Task {
			return 0, 0, 0, nil, nil, fmt.Errorf("dist: delta upserts not ascending")
		}
		upserts = append(upserts, b)
	}
	if len(d.buf) != 0 {
		return 0, 0, 0, nil, nil, fmt.Errorf("dist: %d trailing bytes after delta", len(d.buf))
	}
	return int(id), baseSeq, seq, removed, upserts, nil
}

// peekDeltaSeqs reads a delta header without decoding the body.
func peekDeltaSeqs(payload []byte) (siteID int, baseSeq, seq uint64, err error) {
	if len(payload) < len(deltaMagic) || string(payload[:len(deltaMagic)]) != deltaMagic {
		return 0, 0, 0, fmt.Errorf("dist: bad delta magic")
	}
	d := &snapshotDecoder{buf: payload[len(deltaMagic):]}
	id, err := d.uvarint()
	if err != nil {
		return 0, 0, 0, err
	}
	if baseSeq, err = d.uvarint(); err != nil {
		return 0, 0, 0, err
	}
	if seq, err = d.uvarint(); err != nil {
		return 0, 0, 0, err
	}
	return int(id), baseSeq, seq, nil
}

// blockedEqual reports whether two blocked statuses are identical.
func blockedEqual(a, b *deps.Blocked) bool {
	if a.Task != b.Task || len(a.WaitsFor) != len(b.WaitsFor) || len(a.Regs) != len(b.Regs) {
		return false
	}
	for i := range a.WaitsFor {
		if a.WaitsFor[i] != b.WaitsFor[i] {
			return false
		}
	}
	for i := range a.Regs {
		if a.Regs[i] != b.Regs[i] {
			return false
		}
	}
	return true
}

// diffSnapshots computes the cumulative delta turning base into cur. Both
// inputs must be sorted ascending by Task (deps.State.SnapshotInto and the
// decoder both guarantee it). Results are appended into the caller's
// reusable removed/upserts slices; upsert entries alias cur.
func diffSnapshots(base, cur []deps.Blocked, removed []deps.TaskID, upserts []deps.Blocked) ([]deps.TaskID, []deps.Blocked) {
	i, j := 0, 0
	for i < len(base) || j < len(cur) {
		switch {
		case i >= len(base) || (j < len(cur) && cur[j].Task < base[i].Task):
			upserts = append(upserts, cur[j])
			j++
		case j >= len(cur) || base[i].Task < cur[j].Task:
			removed = append(removed, base[i].Task)
			i++
		default: // same task
			if !blockedEqual(&base[i], &cur[j]) {
				upserts = append(upserts, cur[j])
			}
			i++
			j++
		}
	}
	return removed, upserts
}

// applyDelta merges a decoded delta into a base view, appending the result
// (sorted by Task) into dst. Entries alias base and upserts; callers must
// treat the output as read-only. Removed tasks absent from the base are
// ignored — the delta is cumulative, so re-applying after a base refresh
// is harmless.
func applyDelta(dst, base []deps.Blocked, removed []deps.TaskID, upserts []deps.Blocked) []deps.Blocked {
	i, j, k := 0, 0, 0 // base, removed, upserts cursors
	for i < len(base) || k < len(upserts) {
		if k < len(upserts) && (i >= len(base) || upserts[k].Task <= base[i].Task) {
			if i < len(base) && base[i].Task == upserts[k].Task {
				i++
			}
			dst = append(dst, upserts[k])
			k++
			continue
		}
		t := base[i].Task
		for j < len(removed) && removed[j] < t {
			j++
		}
		if j < len(removed) && removed[j] == t {
			i++
			continue
		}
		dst = append(dst, base[i])
		i++
	}
	return dst
}
