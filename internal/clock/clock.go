// Package clock abstracts the tickers that drive the periodic
// verification loops (core's detection scan, dist's publish/check round)
// behind an injectable interface, so tests can step those loops
// deterministically instead of sleeping real time.
//
// Production code uses Real, which delegates to time.NewTicker. Tests use
// Fake, whose Tick method hand-delivers one tick to every live ticker
// synchronously: when Tick returns, every loop has RECEIVED the tick and is
// running (or has finished) its round. Because a loop only comes back to
// its ticker channel after the round completes, a second Tick doubles as a
// barrier: when it returns, the round triggered by the first Tick is done.
// That double-tick idiom is how the converted tests assert "the detector
// has definitely scanned the current state" without a single time.Sleep.
package clock

import (
	"sync"
	"time"
)

// Clock is a source of tickers and of the current time. It is the only
// part of the time API the verification loops (and the segment archive's
// timestamps) use.
type Clock interface {
	// NewTicker returns a ticker firing every d (for Fake clocks, whenever
	// Tick is called; d is ignored).
	NewTicker(d time.Duration) Ticker
	// Now returns the current time: wall-clock time for Real, the
	// manually advanced tick time for Fake. Segment indexes (internal/
	// segment) stamp event batches with it, so tests can pin the archived
	// time ranges deterministically.
	Now() time.Time
}

// Ticker is the delivered-tick side of a ticker.
type Ticker interface {
	// C returns the tick channel.
	C() <-chan time.Time
	// Stop releases the ticker. The channel is not closed.
	Stop()
}

// Real is the production clock: NewTicker is time.NewTicker.
type Real struct{}

type realTicker struct{ t *time.Ticker }

// NewTicker returns a real time.Ticker-backed ticker.
func (Real) NewTicker(d time.Duration) Ticker { return realTicker{time.NewTicker(d)} }

// Now returns time.Now().
func (Real) Now() time.Time { return time.Now() }

func (rt realTicker) C() <-chan time.Time { return rt.t.C }
func (rt realTicker) Stop()               { rt.t.Stop() }

// Fake is a manually driven clock. Ticks are delivered only by Tick, each
// as a blocking (rendezvous) send, which is what makes the loops it drives
// steppable: no tick is ever dropped or coalesced, and delivery order is
// the ticker registration order.
//
// Contract: do not call Tick concurrently with stopping the loop that owns
// a ticker (e.g. Verifier.Close / Site.Close) — a tick sent to a loop that
// has already exited would block forever. Tests tick, then close.
type Fake struct {
	mu      sync.Mutex
	cond    *sync.Cond
	tickers []*fakeTicker
	now     time.Time
}

type fakeTicker struct {
	f       *Fake
	ch      chan time.Time
	stopped bool
}

// NewFake returns a Fake clock with no tickers.
func NewFake() *Fake {
	f := &Fake{now: time.Unix(1_000_000, 0)}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// NewTicker registers a new steppable ticker; d is ignored.
func (f *Fake) NewTicker(d time.Duration) Ticker {
	f.mu.Lock()
	defer f.mu.Unlock()
	tk := &fakeTicker{f: f, ch: make(chan time.Time)}
	f.tickers = append(f.tickers, tk)
	f.cond.Broadcast()
	return tk
}

func (tk *fakeTicker) C() <-chan time.Time { return tk.ch }

func (tk *fakeTicker) Stop() {
	tk.f.mu.Lock()
	defer tk.f.mu.Unlock()
	tk.stopped = true
}

// Now returns the fake's current time: it starts at a fixed epoch and
// advances one second per Tick, so code stamping data with Clock.Now is
// fully deterministic under test.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// WaitTickers blocks until at least n live tickers exist — the start-up
// barrier for tests driving several loops (e.g. a cluster of sites) from
// one Fake, so an early Tick cannot miss a loop that has not started yet.
func (f *Fake) WaitTickers(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for f.liveLocked() < n {
		f.cond.Wait()
	}
}

func (f *Fake) liveLocked() int {
	live := 0
	for _, tk := range f.tickers {
		if !tk.stopped {
			live++
		}
	}
	return live
}

// Tick delivers one tick to every live ticker, blocking until each
// delivery has been received. If no ticker exists yet it first waits for
// one (so Tick immediately after starting a loop cannot race its ticker
// creation). When Tick returns, every driven loop has entered the round
// this tick triggered; a second Tick additionally guarantees that round
// has completed (see the package comment).
func (f *Fake) Tick() {
	f.mu.Lock()
	for f.liveLocked() == 0 {
		f.cond.Wait()
	}
	f.now = f.now.Add(time.Second)
	now := f.now
	live := make([]*fakeTicker, 0, len(f.tickers))
	for _, tk := range f.tickers {
		if !tk.stopped {
			live = append(live, tk)
		}
	}
	f.mu.Unlock()
	for _, tk := range live {
		tk.ch <- now
	}
}

// Round is the double-tick barrier: it returns once every loop driven by
// this clock has completed at least one full round observing the state as
// of the call. Equivalent to Tick();Tick().
func (f *Fake) Round() {
	f.Tick()
	f.Tick()
}
