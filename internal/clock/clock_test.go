package clock

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestRealTickerTicks(t *testing.T) {
	tk := Real{}.NewTicker(time.Millisecond)
	defer tk.Stop()
	select {
	case <-tk.C():
	case <-time.After(5 * time.Second):
		t.Fatal("real ticker never ticked")
	}
}

// TestFakeTickIsSynchronous: Tick must not return before the consumer has
// received the tick, and a second Tick must not return before the work
// between receives is done — the double-tick barrier the converted loop
// tests rely on.
func TestFakeTickIsSynchronous(t *testing.T) {
	f := NewFake()
	var rounds atomic.Int32
	done := make(chan struct{})
	started := make(chan Ticker, 1)
	go func() {
		tk := f.NewTicker(time.Hour)
		started <- tk
		for i := 0; i < 2; i++ {
			<-tk.C()
			rounds.Add(1) // the loop's "round"
		}
		close(done)
	}()
	f.Tick()
	f.Tick() // returns only after round 1 completed (loop back at receive)
	if got := rounds.Load(); got < 1 {
		t.Fatalf("rounds = %d after double tick, want >= 1", got)
	}
	<-done
	(<-started).Stop()
}

// TestFakeTickWaitsForTicker: a Tick issued before any loop has created
// its ticker must wait for the registration, not panic or drop the tick.
func TestFakeTickWaitsForTicker(t *testing.T) {
	f := NewFake()
	got := make(chan time.Time, 1)
	go func() {
		time.Sleep(10 * time.Millisecond) // ticker shows up late
		tk := f.NewTicker(time.Hour)
		got <- <-tk.C()
	}()
	f.Tick() // must block until the ticker exists, then deliver
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("late ticker never received the tick")
	}
}

func TestFakeStoppedTickerSkipped(t *testing.T) {
	f := NewFake()
	dead := f.NewTicker(time.Hour)
	dead.Stop()
	live := f.NewTicker(time.Hour)
	go f.Tick()
	select {
	case <-live.C():
	case <-time.After(5 * time.Second):
		t.Fatal("live ticker starved by a stopped one")
	}
}

func TestWaitTickers(t *testing.T) {
	f := NewFake()
	ready := make(chan struct{})
	go func() {
		f.WaitTickers(2)
		close(ready)
	}()
	f.NewTicker(time.Hour)
	select {
	case <-ready:
		t.Fatal("WaitTickers(2) returned with one ticker")
	case <-time.After(10 * time.Millisecond):
	}
	f.NewTicker(time.Hour)
	select {
	case <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("WaitTickers(2) never returned")
	}
}

// TestFakeDrivesManyTickers mirrors the cluster use: one Fake stepping
// several loops in lockstep.
func TestFakeDrivesManyTickers(t *testing.T) {
	f := NewFake()
	const n = 3
	counts := make(chan int, n*2)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			tk := f.NewTicker(time.Hour)
			defer tk.Stop()
			for j := 0; j < 2; j++ {
				<-tk.C()
				counts <- i
			}
		}()
	}
	f.WaitTickers(n)
	f.Tick()
	f.Tick()
	seen := map[int]int{}
	for i := 0; i < n*2; i++ {
		select {
		case id := <-counts:
			seen[id]++
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d/%d ticks observed", i, n*2)
		}
	}
	for i := 0; i < n; i++ {
		if seen[i] != 2 {
			t.Fatalf("loop %d saw %d ticks, want 2", i, seen[i])
		}
	}
}
