// Package obs is the server-side stage-attribution toolkit: nanosecond
// stamps, fixed-bucket latency histograms, and a lock-free per-session
// flight recorder of recent verification decisions.
//
// PR 6 established that the client-observed gate round trip is floored by
// the hardware (846µs raw TCP echo RTT on the 1-core CI container), but
// nothing could say how much of a slow gate was queue wait, verifier work,
// or egress flush. This package provides that attribution without giving
// up the ingest path's zero-allocation guarantee: every primitive here is
// a handful of atomic operations per observation — no locks, no maps, no
// per-sample allocation — so stage timing stays ALWAYS ON, in production,
// at full load.
//
// The three stages of a gate, as threaded through internal/server:
//
//	decode ──► enqueue ──► executor dequeue ──► verify done ──► flush
//	         └── queue-wait ──┘└──── verify ────┘ └── flush ───┘
//
// Queue-wait runs from decode/enqueue (read loop) to executor pickup —
// it grows when an executor is starved or a session's queue backs up.
// Verify is the executor's occupancy for the batch — the actual deadlock
// verification work (gate queries, state mutation, reports). Flush runs
// from a response entering the connection's coalesce buffer to the
// writer's syscall completing — it grows when egress coalescing backs up
// behind a slow socket.
//
// All times are int64 nanoseconds from Nanotime, a monotonic reading that
// is valid only for differences within one process.
package obs

import (
	"math/bits"
	"runtime"
	"sync/atomic"
	"time"
)

// epoch anchors Nanotime; time.Since on a monotonic Time is a single
// clock read, no allocation.
var epoch = time.Now()

// Nanotime returns monotonic nanoseconds since process start. Only
// differences are meaningful.
func Nanotime() int64 { return int64(time.Since(epoch)) }

// Histogram geometry: power-of-two microsecond buckets. Bucket i holds
// observations in (2^(i-1)µs, 2^iµs]; the first bucket additionally takes
// everything at or below 1µs, and the final bucket is +Inf. 1µs..~16.4ms
// spans the whole interesting range: a warm gate query is ~0.5µs, the
// 1-core container's wire RTT floor is ~846µs, and anything beyond 16ms
// is an outage, not a latency.
const (
	// NumBuckets is the bucket count including the +Inf bucket.
	NumBuckets = 16
	numBounds  = NumBuckets - 1
)

// BucketBound returns the inclusive upper bound of bucket i in
// nanoseconds (i < NumBuckets-1; the last bucket is +Inf).
func BucketBound(i int) int64 { return int64(1000) << i }

// bucketOf maps a nanosecond duration to its bucket index.
func bucketOf(ns int64) int {
	if ns <= 1000 {
		return 0
	}
	// Smallest i with ns <= 1000<<i, i.e. bits needed for (ns-1)/1000.
	i := bits.Len64(uint64((ns - 1) / 1000))
	if i > numBounds {
		i = numBounds
	}
	return i
}

// Hist is a fixed-bucket nanosecond-latency histogram safe for one or
// many concurrent writers and concurrent readers: Observe is two atomic
// adds plus a bounded max CAS, so it can sit on the ingest hot path.
type Hist struct {
	buckets [NumBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds
}

// Observe records one duration in nanoseconds.
func (h *Hist) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		m := h.max.Load()
		if ns <= m || h.max.CompareAndSwap(m, ns) {
			return
		}
	}
}

// Snapshot copies the histogram's counters. The copy is not atomic across
// buckets (observations may land mid-copy), which is fine for monitoring:
// every bucket value is individually coherent and monotone.
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// HistSnapshot is a point-in-time copy of a Hist, comparable and
// subtractable (for measuring one interval of a cumulative histogram).
type HistSnapshot struct {
	Buckets [NumBuckets]int64
	Count   int64
	Sum     int64 // nanoseconds
	Max     int64 // nanoseconds, since histogram creation (not subtractable)
}

// Sub returns the histogram of observations made after prev was taken
// (bucket-wise difference). Max is carried from s unchanged: a maximum
// cannot be un-observed, so interval percentiles should come from the
// buckets, not Max.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	d := s
	for i := range d.Buckets {
		d.Buckets[i] -= prev.Buckets[i]
	}
	d.Count -= prev.Count
	d.Sum -= prev.Sum
	return d
}

// Percentile returns the p-th percentile (0..100, nearest-rank) in
// nanoseconds, as the upper bound of the bucket the rank falls in; ranks
// in the +Inf bucket report Max. Zero when empty.
func (s HistSnapshot) Percentile(p float64) int64 {
	if s.Count <= 0 {
		return 0
	}
	rank := int64(p/100*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var seen int64
	for i := 0; i < numBounds; i++ {
		seen += s.Buckets[i]
		if seen >= rank {
			return BucketBound(i)
		}
	}
	return s.Max
}

// Mean returns the arithmetic mean in nanoseconds (0 when empty).
func (s HistSnapshot) Mean() int64 {
	if s.Count <= 0 {
		return 0
	}
	return s.Sum / s.Count
}

// Stats condenses a snapshot into the microsecond summary served by the
// /debug/armus/sessions endpoint and printed by armus-loadgen.
func (s HistSnapshot) Stats() StageStats {
	return StageStats{
		Count: s.Count,
		P50Us: s.Percentile(50) / 1000,
		P99Us: s.Percentile(99) / 1000,
		MaxUs: s.Max / 1000,
		SumUs: s.Sum / 1000,
	}
}

// StageStats is the wire form of one stage histogram: the JSON block the
// server's /debug/armus/sessions endpoint serves and the client SDK's
// FetchServerStages decodes.
type StageStats struct {
	Count int64 `json:"count"`
	P50Us int64 `json:"p50_us"`
	P99Us int64 `json:"p99_us"`
	MaxUs int64 `json:"max_us"`
	SumUs int64 `json:"sum_us"`
}

// Stages is the three-stage breakdown of the ingestion path.
type Stages struct {
	QueueWait StageStats `json:"queue_wait"`
	Verify    StageStats `json:"verify"`
	Flush     StageStats `json:"flush"`
}

// Record kinds for the flight recorder.
const (
	RecordGate       uint8 = iota // an avoidance-gate decision
	RecordCheckpoint              // a client checkpoint verdict
	RecordReport                  // a detection-mode deadlock report transition
)

// KindString names a record kind for logs and JSON.
func KindString(k uint8) string {
	switch k {
	case RecordGate:
		return "gate"
	case RecordCheckpoint:
		return "checkpoint"
	case RecordReport:
		return "report"
	}
	return "unknown"
}

// GateRecord is one verification decision in a session's flight ring:
// which task, its per-kind ordinal (the linkage into the session's
// archived trace — the Nth gate record is the Nth gated block of the
// session's segment stream), the stage breakdown, and the outcome.
type GateRecord struct {
	Ordinal    uint64 `json:"ordinal"` // 1-based, per kind, per session
	Kind       uint8  `json:"kind"`
	Task       int64  `json:"task"`
	Rejected   bool   `json:"rejected"`   // gate records: block refused
	Deadlocked bool   `json:"deadlocked"` // checkpoint/report records: verdict
	QueueNs    int64  `json:"queue_ns"`   // batch queue-wait attributed to this decision
	VerifyNs   int64  `json:"verify_ns"`  // this decision's own verifier work
	AtNs       int64  `json:"at_ns"`      // Nanotime when processing began
}

// FlightRecords is the ring capacity: the last N decisions of a session.
const FlightRecords = 64

// recWords is the packed atomic size of one ring slot: a leading and a
// trailing write-id word (the slot's sequence lock) around six field
// words.
const recWords = 8

const (
	flagRejected   = 1 << 8
	flagDeadlocked = 1 << 9
)

// FlightRecorder is a lock-free ring of the last FlightRecords decisions.
// One writer (the session executor) records; any number of readers
// snapshot concurrently. Each slot is its own sequence lock of atomic
// words: the writer brackets the six field stores with the write's id in
// the slot's first and last word, and a reader accepts a slot only when
// both ids match after the field loads. A collision means the writer
// lapped onto that very slot mid-read — the retry simply reads the newer
// record. Record is 8 plain atomic stores plus one counter store: no
// locks, no allocation, data-race-free by construction (every shared word
// is atomic).
type FlightRecorder struct {
	n    atomic.Uint64 // records ever written
	ring [FlightRecords][recWords]atomic.Int64
}

// Record appends r to the ring, overwriting the oldest. Single writer.
func (f *FlightRecorder) Record(r GateRecord) {
	n := f.n.Load()
	s := &f.ring[n%FlightRecords]
	id := int64(n + 1) // nonzero, unique per write
	flags := int64(r.Kind)
	if r.Rejected {
		flags |= flagRejected
	}
	if r.Deadlocked {
		flags |= flagDeadlocked
	}
	s[0].Store(id)
	s[1].Store(int64(r.Ordinal))
	s[2].Store(flags)
	s[3].Store(r.Task)
	s[4].Store(r.QueueNs)
	s[5].Store(r.VerifyNs)
	s[6].Store(r.AtNs)
	s[7].Store(id)
	f.n.Store(n + 1)
}

// Len reports how many records the ring currently holds.
func (f *FlightRecorder) Len() int {
	n := f.n.Load()
	if n > FlightRecords {
		return FlightRecords
	}
	return int(n)
}

// Snapshot appends the ring's records to buf, oldest first, and returns
// it. Every returned record is internally consistent (one Record call's
// fields); a slot the writer laps mid-read is re-read — yielding the
// newer record — and skipped entirely if it stays contended past a
// bounded number of attempts (a debug surface must never spin against a
// hot executor).
func (f *FlightRecorder) Snapshot(buf []GateRecord) []GateRecord {
	buf = buf[:0]
	n := f.n.Load()
	k := n
	if k > FlightRecords {
		k = FlightRecords
	}
	for j := n - k; j < n; j++ {
		s := &f.ring[j%FlightRecords]
		for attempt := 0; attempt < 16; attempt++ {
			// The writer stores s[0] first and s[7] last, so equal nonzero
			// ids observed AROUND the field loads (s[7] before, s[0] after)
			// bracket a completed write.
			id := s[7].Load()
			flags := s[2].Load()
			rec := GateRecord{
				Ordinal:    uint64(s[1].Load()),
				Kind:       uint8(flags & 0xff),
				Rejected:   flags&flagRejected != 0,
				Deadlocked: flags&flagDeadlocked != 0,
				Task:       s[3].Load(),
				QueueNs:    s[4].Load(),
				VerifyNs:   s[5].Load(),
				AtNs:       s[6].Load(),
			}
			if id != 0 && s[0].Load() == id {
				buf = append(buf, rec)
				break
			}
			runtime.Gosched()
		}
	}
	return buf
}

// SessionObs is the per-session observability block: stage histograms,
// decision counters, and the flight ring. Everything is atomic — the
// executor writes on the hot path, the /debug handler and metrics scrape
// read concurrently — and nothing here allocates after the session is
// built.
type SessionObs struct {
	QueueWait Hist
	Verify    Hist
	Flush     Hist

	Gates       atomic.Int64 // avoidance-gate decisions (its ordinal space)
	Rejections  atomic.Int64 // gates refused
	Checkpoints atomic.Int64 // checkpoint verdicts answered (its ordinal space)
	Reports     atomic.Int64 // deadlock report transitions (its ordinal space)

	// LastDeadlocked is the most recent verdict the session computed (a
	// checkpoint answer or a report transition edge).
	LastDeadlocked atomic.Bool

	Flight FlightRecorder
}

// StagesOf summarises the three stage histograms.
func (o *SessionObs) StagesOf() Stages {
	return Stages{
		QueueWait: o.QueueWait.Snapshot().Stats(),
		Verify:    o.Verify.Snapshot().Stats(),
		Flush:     o.Flush.Snapshot().Stats(),
	}
}
