package obs

import (
	"sync"
	"testing"
	"time"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {999, 0}, {1000, 0},
		{1001, 1}, {2000, 1},
		{2001, 2}, {4000, 2},
		{1000 << 13, 13},
		{1000<<14 - 1, 14}, {1000 << 14, 14},
		{1000<<14 + 1, numBounds}, {1 << 62, numBounds},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Every non-Inf bucket's upper bound lands in its own bucket.
	for i := 0; i < numBounds; i++ {
		if got := bucketOf(BucketBound(i)); got != i {
			t.Errorf("bucketOf(BucketBound(%d)) = %d", i, got)
		}
	}
}

func TestHistObserveSnapshotPercentile(t *testing.T) {
	var h Hist
	// 90 fast (≤1µs), 9 medium (~100µs bucket), 1 slow (5ms).
	for i := 0; i < 90; i++ {
		h.Observe(500)
	}
	for i := 0; i < 9; i++ {
		h.Observe(100_000)
	}
	h.Observe(5_000_000)
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	wantSum := int64(90*500 + 9*100_000 + 5_000_000)
	if s.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", s.Sum, wantSum)
	}
	if s.Max != 5_000_000 {
		t.Fatalf("max = %d, want 5000000", s.Max)
	}
	if p := s.Percentile(50); p != BucketBound(0) {
		t.Fatalf("p50 = %d, want %d (the ≤1µs bucket)", p, BucketBound(0))
	}
	// p95 falls among the 100µs observations: bucket bound 128µs.
	if p := s.Percentile(95); p != 128_000 {
		t.Fatalf("p95 = %d, want 128000", p)
	}
	// p100 is the slow outlier's bucket bound (8192µs).
	if p := s.Percentile(100); p != 8_192_000 {
		t.Fatalf("p100 = %d, want 8192000", p)
	}
	if m := s.Mean(); m != wantSum/100 {
		t.Fatalf("mean = %d, want %d", m, wantSum/100)
	}
}

func TestHistPercentileInfBucketReportsMax(t *testing.T) {
	var h Hist
	h.Observe(int64(30 * time.Second)) // beyond every bound
	s := h.Snapshot()
	if p := s.Percentile(99); p != int64(30*time.Second) {
		t.Fatalf("+Inf-bucket percentile = %d, want the max", p)
	}
}

func TestHistSnapshotSub(t *testing.T) {
	var h Hist
	h.Observe(500)
	h.Observe(3000)
	before := h.Snapshot()
	h.Observe(500)
	h.Observe(100_000)
	d := h.Snapshot().Sub(before)
	if d.Count != 2 {
		t.Fatalf("interval count = %d, want 2", d.Count)
	}
	if d.Sum != 100_500 {
		t.Fatalf("interval sum = %d, want 100500", d.Sum)
	}
	if d.Buckets[0] != 1 {
		t.Fatalf("interval fast bucket = %d, want 1", d.Buckets[0])
	}
}

func TestFlightRecorderWraparound(t *testing.T) {
	var f FlightRecorder
	if f.Len() != 0 {
		t.Fatalf("empty ring Len = %d", f.Len())
	}
	const total = FlightRecords*2 + 7
	for i := 1; i <= total; i++ {
		f.Record(GateRecord{
			Ordinal:  uint64(i),
			Kind:     RecordGate,
			Task:     int64(i * 10),
			Rejected: i%2 == 0,
			QueueNs:  int64(i),
			VerifyNs: int64(i * 2),
			AtNs:     int64(i * 3),
		})
	}
	if f.Len() != FlightRecords {
		t.Fatalf("full ring Len = %d, want %d", f.Len(), FlightRecords)
	}
	got := f.Snapshot(nil)
	if len(got) != FlightRecords {
		t.Fatalf("snapshot holds %d records, want %d", len(got), FlightRecords)
	}
	for i, r := range got {
		want := total - FlightRecords + 1 + i // oldest-first
		if r.Ordinal != uint64(want) {
			t.Fatalf("record %d: ordinal %d, want %d", i, r.Ordinal, want)
		}
		if r.Task != int64(want*10) || r.QueueNs != int64(want) ||
			r.VerifyNs != int64(want*2) || r.AtNs != int64(want*3) {
			t.Fatalf("record %d round-trip mismatch: %+v", i, r)
		}
		if r.Rejected != (want%2 == 0) || r.Kind != RecordGate {
			t.Fatalf("record %d flags mismatch: %+v", i, r)
		}
	}
}

// TestFlightRecorderConcurrentReaders hammers the ring from one writer and
// several snapshotting readers; under -race this is the proof the
// lock-free ring is data-race-free, and every returned record must be
// internally consistent (the fields of ONE Record call, checkable because
// each record's fields are derived from its ordinal).
func TestFlightRecorderConcurrentReaders(t *testing.T) {
	var f FlightRecorder
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []GateRecord
			for {
				select {
				case <-stop:
					return
				default:
				}
				buf = f.Snapshot(buf)
				for _, rec := range buf {
					if rec.QueueNs != int64(rec.Ordinal) || rec.VerifyNs != int64(rec.Ordinal*2) {
						t.Errorf("torn record: %+v", rec)
						return
					}
				}
			}
		}()
	}
	for i := 1; i <= 200_000; i++ {
		f.Record(GateRecord{Ordinal: uint64(i), Kind: RecordGate,
			QueueNs: int64(i), VerifyNs: int64(i * 2)})
	}
	close(stop)
	wg.Wait()
}

// TestStampPathZeroAlloc is the obs half of the ingest path's
// zero-allocation guarantee: a stamp, three histogram observations, a
// counter bump and a flight record — the exact per-gate obs work the
// executor does — allocate nothing.
func TestStampPathZeroAlloc(t *testing.T) {
	var o SessionObs
	n := testing.AllocsPerRun(1000, func() {
		t0 := Nanotime()
		o.QueueWait.Observe(1500)
		o.Verify.Observe(Nanotime() - t0)
		o.Flush.Observe(300)
		ord := o.Gates.Add(1)
		o.Flight.Record(GateRecord{
			Ordinal: uint64(ord), Kind: RecordGate, Task: 7,
			QueueNs: 1500, VerifyNs: 10, AtNs: t0,
		})
		o.LastDeadlocked.Store(false)
	})
	if n != 0 {
		t.Fatalf("obs stamp path allocates %.1f per gate, want 0", n)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[uint8]string{
		RecordGate: "gate", RecordCheckpoint: "checkpoint",
		RecordReport: "report", 99: "unknown",
	} {
		if got := KindString(k); got != want {
			t.Errorf("KindString(%d) = %q, want %q", k, got, want)
		}
	}
}
