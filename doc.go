// Package armus is a dynamic deadlock verification library for barrier
// synchronisation in Go — a from-scratch reproduction of "Dynamic deadlock
// verification for general barrier synchronisation" (Cogumbreiro, Hu,
// Martins, Yoshida; PPoPP 2015).
//
// # Overview
//
// Armus provides phasers — the general barrier abstraction that subsumes
// cyclic barriers, join barriers (fork/join, finish), countdown latches,
// X10-style clocks and clocked variables — with built-in deadlock
// verification in two modes:
//
//   - detection: a background checker periodically samples the blocked
//     tasks and reports existing deadlocks;
//   - avoidance: each blocking operation checks first and returns a
//     *DeadlockError instead of deadlocking, deregistering the failing
//     task so the application can recover.
//
// Verification is sound and complete with respect to the paper's core
// language PL: a deadlock is reported if and only if the program state is
// deadlocked in the sense of its Definition 3.2 (mutual waiting among
// blocked tasks). Full scans translate an event-based blocked-status
// representation into either a task-centric Wait-For Graph or an
// event-centric State Graph — selected adaptively per check — and run
// cycle detection; the avoidance gate instead runs a targeted search over
// a sharded, incrementally maintained index, so the per-block check is
// sub-microsecond and allocation-free in steady state (see DESIGN.md "Hot
// path" and the checked-in BENCH_*.json measurements).
//
// # Quick start
//
//	v := armus.New(armus.WithMode(armus.ModeAvoid))
//	defer v.Close()
//
//	main := v.NewTask("main")
//	barrier := v.NewPhaser(main)      // main is registered at phase 0
//	worker := v.NewTask("worker")
//	barrier.Register(main, worker)    // worker inherits main's phase
//
//	go func() {
//	    if err := barrier.Advance(worker); err != nil {
//	        var de *armus.DeadlockError
//	        if errors.As(err, &de) { /* recover */ }
//	    }
//	}()
//	barrier.Advance(main)             // synchronise
//
// For distributed programs, every site creates a Site connected to a
// shared Store (see NewStoreServer, NewSite); sites publish their blocked
// statuses and each independently checks the merged global view —
// one-phase, fault-tolerant distributed deadlock detection.
//
// Any verifier can additionally record its full transition trace
// (WithTraceWriter): a compact, CRC-footed binary log of every register /
// arrive / drop / block / unblock and every delivered verdict, replayable
// verdict-for-verdict through all verification pipelines with the
// armus-trace tool (see DESIGN.md "Trace record/replay" and
// testdata/corpus).
//
// # Layout
//
// The implementation lives under internal/ (graph, deps, core, barrier,
// clocked, pl, store, dist, trace, workloads, harness); this package
// re-exports the public surface. DESIGN.md maps each paper section to a
// module and EXPERIMENTS.md records the reproduced evaluation.
package armus
